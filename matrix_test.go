package smtbalance

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
)

// smallMatrixSpec is the suite's fast two-cell spec.
func smallMatrixSpec(t *testing.T) MatrixSpec {
	t.Helper()
	var spec MatrixSpec
	for _, s := range []string{"uniform,base=5000,iters=3", "step,base=5000,iters=3"} {
		sc, err := ParseScenario(s)
		if err != nil {
			t.Fatal(err)
		}
		spec.Scenarios = append(spec.Scenarios, sc)
	}
	spec.Policies = []Policy{StaticPolicy{}, &PaperDynamic{}}
	return spec
}

func TestEvalMatrixAll(t *testing.T) {
	mx := NewMatrix()
	res, err := mx.EvalAll(t.Context(), smallMatrixSpec(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells != 2 {
		t.Errorf("Cells = %d, want 2", res.Cells)
	}
	if len(res.Entries) != 4 {
		t.Fatalf("entries = %d, want 4 (2 cells x 2 policies)", len(res.Entries))
	}
	for i, e := range res.Entries {
		if e.Cycles <= 0 || e.Seconds <= 0 {
			t.Errorf("entry %d has empty metrics: %+v", i, e)
		}
		if e.Topology != "1x2x2" {
			t.Errorf("entry %d topology = %q", i, e.Topology)
		}
		// The static control scores exactly 1 by construction.
		if e.Policy == "static" && e.Speedup != 1 {
			t.Errorf("static control speedup = %v, want exactly 1", e.Speedup)
		}
	}
	// Spec order: scenario-major, static control first within a cell.
	if res.Entries[0].Policy != "static" || res.Entries[1].Policy == "static" {
		t.Errorf("entry order not (static, dyn): %q, %q", res.Entries[0].Policy, res.Entries[1].Policy)
	}
	if res.Entries[0].Scenario != res.Entries[1].Scenario {
		t.Errorf("first cell split across scenarios: %q vs %q", res.Entries[0].Scenario, res.Entries[1].Scenario)
	}
}

// The matrix is worker-count deterministic: the acceptance criterion of
// the whole subsystem.
func TestEvalMatrixWorkerDeterminism(t *testing.T) {
	spec := smallMatrixSpec(t)
	serial, err := NewMatrix().EvalAll(t.Context(), spec, &MatrixOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := NewMatrix().EvalAll(t.Context(), spec, &MatrixOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Entries, pooled.Entries) {
		t.Errorf("matrix differs across worker counts:\nserial: %+v\npooled: %+v", serial.Entries, pooled.Entries)
	}
}

// The static control is added implicitly when the policy axis lacks it,
// and lands first in every cell.
func TestEvalMatrixAddsStaticControl(t *testing.T) {
	spec := smallMatrixSpec(t)
	spec.Scenarios = spec.Scenarios[:1]
	spec.Policies = []Policy{&FeedbackPolicy{}}
	res, err := NewMatrix().EvalAll(t.Context(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 2 {
		t.Fatalf("entries = %d, want 2 (implicit static + feedback)", len(res.Entries))
	}
	if res.Entries[0].Policy != "static" {
		t.Errorf("first entry = %q, want the implicit static control", res.Entries[0].Policy)
	}
}

// Repeating a spec replays cells from the engine cache — and the cached
// replay is byte-identical.
func TestMatrixCellCache(t *testing.T) {
	mx := NewMatrix()
	spec := smallMatrixSpec(t)
	first, err := mx.EvalAll(t.Context(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses, cells := mx.CellStats()
	if hits != 0 || misses != 2 || cells != 2 {
		t.Errorf("after first eval: hits=%d misses=%d cells=%d, want 0/2/2", hits, misses, cells)
	}
	second, err := mx.EvalAll(t.Context(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hits, _, _ := mx.CellStats(); hits != 2 {
		t.Errorf("after second eval: hits=%d, want 2", hits)
	}
	if !reflect.DeepEqual(first.Entries, second.Entries) {
		t.Error("cached replay differs from the original evaluation")
	}
	// A different policy list is a different cell key.
	spec.Policies = []Policy{StaticPolicy{}, &FeedbackPolicy{}}
	if _, err := mx.EvalAll(t.Context(), spec, nil); err != nil {
		t.Fatal(err)
	}
	if _, misses, _ := mx.CellStats(); misses != 4 {
		t.Errorf("changed policy axis: misses=%d, want 4", misses)
	}
}

func TestEvalMatrixSpecValidation(t *testing.T) {
	ctx := context.Background()
	sc, err := ParseScenario("uniform,base=5000,iters=2")
	if err != nil {
		t.Fatal(err)
	}
	for name, spec := range map[string]MatrixSpec{
		"no scenarios":     {Policies: []Policy{StaticPolicy{}}},
		"no policies":      {Scenarios: []Scenario{sc}},
		"nil scenario":     {Scenarios: []Scenario{nil}, Policies: []Policy{StaticPolicy{}}},
		"nil policy":       {Scenarios: []Scenario{sc}, Policies: []Policy{nil}},
		"duplicate policy": {Scenarios: []Scenario{sc}, Policies: []Policy{&PaperDynamic{}, &PaperDynamic{}}},
		"bad topology":     {Scenarios: []Scenario{sc}, Policies: []Policy{StaticPolicy{}}, Topologies: []Topology{{Chips: 1}}},
	} {
		if _, err := NewMatrix().EvalAll(ctx, spec, nil); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestEvalMatrixCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewMatrix().EvalAll(ctx, smallMatrixSpec(t), nil)
	if err == nil {
		t.Fatal("cancelled matrix evaluation succeeded")
	}
}

// The multi-topology axis works and labels entries per topology.
func TestEvalMatrixTopologyAxis(t *testing.T) {
	spec := smallMatrixSpec(t)
	spec.Scenarios = spec.Scenarios[:1]
	spec.Topologies = []Topology{DefaultTopology(), {Chips: 2, CoresPerChip: 2, SMTWays: 2}}
	done := 0
	res, err := NewMatrix().EvalAll(t.Context(), spec, &MatrixOptions{Progress: func(d, total int) {
		done = d
		if total != 2 {
			t.Errorf("Progress total = %d, want 2", total)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if done != 2 {
		t.Errorf("Progress saw %d cells, want 2", done)
	}
	topos := map[string]int{}
	for _, e := range res.Entries {
		topos[e.Topology]++
	}
	if topos["1x2x2"] != 2 || topos["2x2x2"] != 2 {
		t.Errorf("entries per topology = %v, want 2 each", topos)
	}
}

func TestMatrixWriteCSV(t *testing.T) {
	res, err := NewMatrix().EvalAll(t.Context(), smallMatrixSpec(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if lines[0] != "topology,scenario,policy,cycles,seconds,imbalance_pct,speedup_vs_static" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if len(lines) != 1+len(res.Entries) {
		t.Errorf("CSV has %d lines, want %d", len(lines), 1+len(res.Entries))
	}
	// Quoted identity columns: scenario IDs contain commas and must not
	// shift the numeric columns.
	if !strings.Contains(lines[1], `"uniform(`) {
		t.Errorf("scenario column not quoted: %q", lines[1])
	}
}

// The streaming iterator may be abandoned mid-flight.
func TestEvalMatrixStreamBreak(t *testing.T) {
	got := 0
	for _, err := range NewMatrix().Eval(t.Context(), smallMatrixSpec(t), nil) {
		if err != nil {
			t.Fatal(err)
		}
		got++
		break
	}
	if got != 1 {
		t.Errorf("broke after %d entries, want 1", got)
	}
}
