package smtbalance

//lint:file-ignore SA1019 the deprecated Run/Sweep wrappers and DynamicBalance knobs are exercised on purpose: these tests pin that the old spellings stay behavior-identical to their replacements

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// sweepTestJob is a small imbalanced job: ranks 1 and 3 are heavy.
func sweepTestJob(light, heavy int64) Job {
	return Job{Name: "sweep", Ranks: [][]Phase{
		{Compute("fpu", light), Barrier()},
		{Compute("fpu", heavy), Barrier()},
		{Compute("fpu", light), Barrier()},
		{Compute("fpu", heavy), Barrier()},
	}}
}

func TestSweepPublicDeterminism(t *testing.T) {
	job := sweepTestJob(3000, 12000)
	space := Space{Priorities: []Priority{PriorityMedium, PriorityHigh}}
	serial, err := Sweep(job, space, &SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Sweep(job, space, &SweepOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Entries, parallel.Entries) {
		t.Fatal("workers=1 and workers=8 rankings differ")
	}
	if serial.Evaluated != 48 { // 3 pairings x 2^4
		t.Errorf("evaluated %d configurations, want 48", serial.Evaluated)
	}
}

func TestSweepFixPairing(t *testing.T) {
	job := sweepTestJob(2000, 8000)
	res, err := Sweep(job, Space{FixPairing: true,
		Priorities: []Priority{PriorityMedium, PriorityHigh}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 16 {
		t.Errorf("fixed-pairing space evaluated %d, want 16", res.Evaluated)
	}
	for _, e := range res.Entries {
		if !reflect.DeepEqual(e.Placement.CPU, []int{0, 1, 2, 3}) {
			t.Fatalf("FixPairing leaked pairing %v", e.Placement.CPU)
		}
	}
}

func TestSweepBeatsDefaultPlacement(t *testing.T) {
	job := sweepTestJob(3000, 12000)
	base, err := Run(job, PinInOrder(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sweep(job, UserSettableSpace(), &SweepOptions{Top: 3})
	if err != nil {
		t.Fatal(err)
	}
	best, err := res.Best()
	if err != nil {
		t.Fatal(err)
	}
	if best.Cycles >= base.Cycles {
		t.Errorf("sweep best (%d cycles) no faster than default placement (%d cycles)",
			best.Cycles, base.Cycles)
	}
	if len(res.Entries) != 3 {
		t.Errorf("Top=3 kept %d entries", len(res.Entries))
	}
}

func TestSweepObjectives(t *testing.T) {
	job := sweepTestJob(2000, 8000)
	space := Space{FixPairing: true, Priorities: []Priority{PriorityMedium, PriorityHigh}}
	byImb, err := Sweep(job, space, &SweepOptions{Objective: MinimizeImbalance()})
	if err != nil {
		t.Fatal(err)
	}
	byCyc, err := Sweep(job, space, &SweepOptions{Objective: MinimizeCycles()})
	if err != nil {
		t.Fatal(err)
	}
	bi, _ := byImb.Best()
	bc, _ := byCyc.Best()
	if bi.ImbalancePct > bc.ImbalancePct {
		t.Errorf("imbalance objective winner (%.2f%%) worse balanced than cycles winner (%.2f%%)",
			bi.ImbalancePct, bc.ImbalancePct)
	}
	w := WeightedObjective(1, 0.5)
	if w.CyclesWeight != 1 || w.ImbalanceWeight != 0.5 {
		t.Errorf("WeightedObjective = %+v", w)
	}
}

func TestSweepRejectsDynamicOptions(t *testing.T) {
	job := sweepTestJob(1000, 2000)
	if _, err := Sweep(job, Space{}, &SweepOptions{Run: &Options{DynamicBalance: true}}); err == nil {
		t.Error("DynamicBalance accepted in a sweep")
	}
	if _, err := Sweep(job, Space{}, &SweepOptions{Run: &Options{OnIteration: func(IterationStats) {}}}); err == nil {
		t.Error("OnIteration accepted in a sweep")
	}
	if _, err := Sweep(job, Space{Priorities: []Priority{Priority(9)}}, nil); err == nil {
		t.Error("invalid priority accepted in a space")
	}
	odd := Job{Ranks: job.Ranks[:3]}
	if _, err := Sweep(odd, Space{}, nil); err == nil {
		t.Error("odd rank count accepted")
	}
}

func TestSweepFailedRunsErrorRegardlessOfTop(t *testing.T) {
	job := sweepTestJob(2000, 8000)
	space := Space{FixPairing: true, Priorities: []Priority{PriorityMedium, PriorityHigh}}
	// A 1-cycle budget starves every configuration; the sweep must
	// report that whether or not truncation would hide the failures.
	for _, top := range []int{0, 2} {
		_, err := Sweep(job, space, &SweepOptions{Top: top, Run: &Options{MaxCycles: 1}})
		if err == nil {
			t.Errorf("Top=%d: sweep with failing runs returned no error", top)
		} else if !strings.Contains(err.Error(), "16 of 16") {
			t.Errorf("Top=%d: error does not report the failure count: %v", top, err)
		}
	}
}

func TestSweepWriteCSV(t *testing.T) {
	job := sweepTestJob(1500, 6000)
	res, err := Sweep(job, Space{FixPairing: true,
		Priorities: []Priority{PriorityMedium, PriorityHigh}}, &SweepOptions{Top: 4})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("CSV has %d lines, want header + 4 rows:\n%s", len(lines), b.String())
	}
	if !strings.HasPrefix(lines[0], "rank,cpus,priorities,") {
		t.Errorf("missing header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,") {
		t.Errorf("first data row not rank 1: %s", lines[1])
	}
}

func TestOptimizePlacement(t *testing.T) {
	job := sweepTestJob(1500, 6000)
	base, err := Run(job, PinInOrder(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	pl, res, err := OptimizePlacement(job, MinimizeCycles())
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.CPU) != 4 || len(pl.Priority) != 4 {
		t.Fatalf("placement shape wrong: %+v", pl)
	}
	if res.Cycles >= base.Cycles {
		t.Errorf("optimized placement (%d cycles) no faster than default (%d cycles)",
			res.Cycles, base.Cycles)
	}
	// The result must be the winner's actual run, not an estimate.
	rerun, err := Run(job, pl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rerun.Cycles != res.Cycles {
		t.Errorf("returned Result (%d cycles) does not match its placement's run (%d cycles)",
			res.Cycles, rerun.Cycles)
	}
}

// TestOptimizePlacementThreadsOptions is the regression test for the
// options-dropping bug: OptimizePlacement used to re-run the winning
// placement with nil options, so a sweep over a non-default
// Options.Topology re-ran its winner on the 1×2×2 default machine —
// failing outright when the winner used a CPU past 3, silently
// mismatching otherwise.  The sweep's whole environment (topology and
// noise settings here) must carry into the winner's re-run.
func TestOptimizePlacementThreadsOptions(t *testing.T) {
	topo := Topology{Chips: 2, CoresPerChip: 2, SMTWays: 2}
	opts := &Options{Topology: topo, NoOSNoise: true}
	job := sweepTestJob(200, 800)
	pl, res, err := OptimizePlacement(job, MinimizeCycles(), &SweepOptions{Run: opts})
	if err != nil {
		t.Fatal(err)
	}
	for r, cpu := range pl.CPU {
		if cpu < 0 || cpu >= topo.Contexts() {
			t.Fatalf("winner pins rank %d to CPU %d outside the %s topology", r, cpu, topo)
		}
	}
	// The returned Result must be the winner's run under the sweep's own
	// environment: re-running it there reproduces it exactly.
	rerun, err := Run(job, pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rerun.Cycles != res.Cycles {
		t.Errorf("Optimize Result (%d cycles) does not match the winner's run on its own machine (%d cycles)",
			res.Cycles, rerun.Cycles)
	}
	for i, rr := range res.Ranks {
		wantChip := pl.CPU[i] / (topo.CoresPerChip * topo.SMTWays)
		if rr.Chip != wantChip {
			t.Errorf("rank %d reports chip %d, want %d — result not from the 2-chip machine", i, rr.Chip, wantChip)
		}
	}
	if _, _, err := OptimizePlacement(job, MinimizeCycles(), nil, nil); err == nil {
		t.Error("OptimizePlacement accepted two SweepOptions arguments")
	}
}

// TestSweepValidatesRankCountUpFront pins the up-front validation: every
// sweep path — fixed pairing or not, wrapper or Machine — must reject a
// bad rank count with the same descriptive smtbalance error style as
// Placement.validate, instead of a deep enumerator failure.
func TestSweepValidatesRankCountUpFront(t *testing.T) {
	odd := Job{Name: "odd", Ranks: sweepTestJob(1000, 2000).Ranks[:3]}
	for _, space := range []Space{{}, {FixPairing: true}} {
		_, err := Sweep(odd, space, nil)
		if err == nil {
			t.Fatalf("odd rank count accepted (FixPairing=%v)", space.FixPairing)
		}
		if !strings.HasPrefix(err.Error(), "smtbalance:") || !strings.Contains(err.Error(), "even rank count") {
			t.Errorf("odd-count error not descriptive (FixPairing=%v): %v", space.FixPairing, err)
		}
	}

	six := sweepTestJob(1000, 2000)
	six.Ranks = append(six.Ranks, six.Ranks[0], six.Ranks[1])
	for _, space := range []Space{{}, {FixPairing: true}} {
		_, err := Sweep(six, space, nil)
		if err == nil {
			t.Fatalf("6 ranks on the 4-context default accepted (FixPairing=%v)", space.FixPairing)
		}
		msg := err.Error()
		if !strings.HasPrefix(msg, "smtbalance:") || !strings.Contains(msg, "1x2x2") ||
			!strings.Contains(msg, "4 hardware contexts") || !strings.Contains(msg, "grow Options.Topology") {
			t.Errorf("oversized-job error not descriptive (FixPairing=%v): %v", space.FixPairing, err)
		}
	}

	if _, err := Sweep(Job{Name: "empty"}, Space{}, nil); err == nil ||
		!strings.Contains(err.Error(), "no ranks") {
		t.Errorf("empty job error not descriptive: %v", err)
	}

	// The same validation guards the Machine path.
	m, err := NewMachine(&Options{Topology: Topology{Chips: 2, CoresPerChip: 2, SMTWays: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SweepAll(context.Background(), odd, Space{}, nil); err == nil ||
		!strings.Contains(err.Error(), "even rank count") {
		t.Errorf("Machine.SweepAll odd-count error: %v", err)
	}
	// 6 ranks fit a 2-chip machine: the same job that fails above must
	// enumerate here... except 6 ranks = 3 pairs on 4 cores, which is
	// valid, so only check it gets past the rank-count validation.
	if _, err := m.SweepAll(context.Background(), six, Space{FixPairing: true,
		Priorities: []Priority{PriorityMedium}}, nil); err != nil {
		t.Errorf("6 ranks rejected on an 8-context machine: %v", err)
	}
}
