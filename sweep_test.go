package smtbalance

import (
	"reflect"
	"strings"
	"testing"
)

// sweepTestJob is a small imbalanced job: ranks 1 and 3 are heavy.
func sweepTestJob(light, heavy int64) Job {
	return Job{Name: "sweep", Ranks: [][]Phase{
		{Compute("fpu", light), Barrier()},
		{Compute("fpu", heavy), Barrier()},
		{Compute("fpu", light), Barrier()},
		{Compute("fpu", heavy), Barrier()},
	}}
}

func TestSweepPublicDeterminism(t *testing.T) {
	job := sweepTestJob(3000, 12000)
	space := Space{Priorities: []Priority{PriorityMedium, PriorityHigh}}
	serial, err := Sweep(job, space, &SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Sweep(job, space, &SweepOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Entries, parallel.Entries) {
		t.Fatal("workers=1 and workers=8 rankings differ")
	}
	if serial.Evaluated != 48 { // 3 pairings x 2^4
		t.Errorf("evaluated %d configurations, want 48", serial.Evaluated)
	}
}

func TestSweepFixPairing(t *testing.T) {
	job := sweepTestJob(2000, 8000)
	res, err := Sweep(job, Space{FixPairing: true,
		Priorities: []Priority{PriorityMedium, PriorityHigh}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 16 {
		t.Errorf("fixed-pairing space evaluated %d, want 16", res.Evaluated)
	}
	for _, e := range res.Entries {
		if !reflect.DeepEqual(e.Placement.CPU, []int{0, 1, 2, 3}) {
			t.Fatalf("FixPairing leaked pairing %v", e.Placement.CPU)
		}
	}
}

func TestSweepBeatsDefaultPlacement(t *testing.T) {
	job := sweepTestJob(3000, 12000)
	base, err := Run(job, PinInOrder(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sweep(job, UserSettableSpace(), &SweepOptions{Top: 3})
	if err != nil {
		t.Fatal(err)
	}
	best, err := res.Best()
	if err != nil {
		t.Fatal(err)
	}
	if best.Cycles >= base.Cycles {
		t.Errorf("sweep best (%d cycles) no faster than default placement (%d cycles)",
			best.Cycles, base.Cycles)
	}
	if len(res.Entries) != 3 {
		t.Errorf("Top=3 kept %d entries", len(res.Entries))
	}
}

func TestSweepObjectives(t *testing.T) {
	job := sweepTestJob(2000, 8000)
	space := Space{FixPairing: true, Priorities: []Priority{PriorityMedium, PriorityHigh}}
	byImb, err := Sweep(job, space, &SweepOptions{Objective: MinimizeImbalance()})
	if err != nil {
		t.Fatal(err)
	}
	byCyc, err := Sweep(job, space, &SweepOptions{Objective: MinimizeCycles()})
	if err != nil {
		t.Fatal(err)
	}
	bi, _ := byImb.Best()
	bc, _ := byCyc.Best()
	if bi.ImbalancePct > bc.ImbalancePct {
		t.Errorf("imbalance objective winner (%.2f%%) worse balanced than cycles winner (%.2f%%)",
			bi.ImbalancePct, bc.ImbalancePct)
	}
	w := WeightedObjective(1, 0.5)
	if w.CyclesWeight != 1 || w.ImbalanceWeight != 0.5 {
		t.Errorf("WeightedObjective = %+v", w)
	}
}

func TestSweepRejectsDynamicOptions(t *testing.T) {
	job := sweepTestJob(1000, 2000)
	if _, err := Sweep(job, Space{}, &SweepOptions{Run: &Options{DynamicBalance: true}}); err == nil {
		t.Error("DynamicBalance accepted in a sweep")
	}
	if _, err := Sweep(job, Space{}, &SweepOptions{Run: &Options{OnIteration: func(IterationStats) {}}}); err == nil {
		t.Error("OnIteration accepted in a sweep")
	}
	if _, err := Sweep(job, Space{Priorities: []Priority{Priority(9)}}, nil); err == nil {
		t.Error("invalid priority accepted in a space")
	}
	odd := Job{Ranks: job.Ranks[:3]}
	if _, err := Sweep(odd, Space{}, nil); err == nil {
		t.Error("odd rank count accepted")
	}
}

func TestSweepFailedRunsErrorRegardlessOfTop(t *testing.T) {
	job := sweepTestJob(2000, 8000)
	space := Space{FixPairing: true, Priorities: []Priority{PriorityMedium, PriorityHigh}}
	// A 1-cycle budget starves every configuration; the sweep must
	// report that whether or not truncation would hide the failures.
	for _, top := range []int{0, 2} {
		_, err := Sweep(job, space, &SweepOptions{Top: top, Run: &Options{MaxCycles: 1}})
		if err == nil {
			t.Errorf("Top=%d: sweep with failing runs returned no error", top)
		} else if !strings.Contains(err.Error(), "16 of 16") {
			t.Errorf("Top=%d: error does not report the failure count: %v", top, err)
		}
	}
}

func TestSweepWriteCSV(t *testing.T) {
	job := sweepTestJob(1500, 6000)
	res, err := Sweep(job, Space{FixPairing: true,
		Priorities: []Priority{PriorityMedium, PriorityHigh}}, &SweepOptions{Top: 4})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("CSV has %d lines, want header + 4 rows:\n%s", len(lines), b.String())
	}
	if !strings.HasPrefix(lines[0], "rank,cpus,priorities,") {
		t.Errorf("missing header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,") {
		t.Errorf("first data row not rank 1: %s", lines[1])
	}
}

func TestOptimizePlacement(t *testing.T) {
	job := sweepTestJob(1500, 6000)
	base, err := Run(job, PinInOrder(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	pl, res, err := OptimizePlacement(job, MinimizeCycles())
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.CPU) != 4 || len(pl.Priority) != 4 {
		t.Fatalf("placement shape wrong: %+v", pl)
	}
	if res.Cycles >= base.Cycles {
		t.Errorf("optimized placement (%d cycles) no faster than default (%d cycles)",
			res.Cycles, base.Cycles)
	}
	// The result must be the winner's actual run, not an estimate.
	rerun, err := Run(job, pl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rerun.Cycles != res.Cycles {
		t.Errorf("returned Result (%d cycles) does not match its placement's run (%d cycles)",
			res.Cycles, rerun.Cycles)
	}
}
