package smtbalance

import (
	"context"
	"fmt"
	"io"

	"repro/internal/hwpri"
	"repro/internal/mpisim"
	"repro/internal/oskernel"
	"repro/internal/power5"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Phase is one step of a rank's program.
type Phase struct {
	inner mpisim.Phase
}

// Compute returns a compute phase executing n instructions of the named
// kernel kind.  Kinds: "fpu", "fxu", "l1", "l2", "mem", "branchy",
// "mixed" (see internal/workload).  Unknown kinds panic; use ParseKind to
// validate user input first.
func Compute(kind string, n int64) Phase {
	k, err := workload.ParseKind(kind)
	if err != nil {
		panic(err)
	}
	return Phase{mpisim.Compute(workload.Load{Kind: k, N: n})}
}

// ComputeSized is Compute with an explicit data footprint in bytes,
// overriding the kernel kind's default working-set size.
func ComputeSized(kind string, n, footprint int64) Phase {
	k, err := workload.ParseKind(kind)
	if err != nil {
		panic(err)
	}
	return Phase{mpisim.Compute(workload.Load{Kind: k, N: n, Footprint: footprint})}
}

// KernelKinds lists the valid Compute kernel names.
func KernelKinds() []string {
	return []string{"fpu", "fxu", "l1", "l2", "mem", "branchy", "mixed"}
}

// ParseKind validates a kernel kind name.
func ParseKind(kind string) error {
	_, err := workload.ParseKind(kind)
	return err
}

// Barrier returns a global synchronization phase (mpi_barrier).
func Barrier() Phase { return Phase{mpisim.Barrier()} }

// Exchange returns a neighbour-exchange phase: non-blocking sends/receives
// of the given volume to each peer rank, followed by a waitall.
func Exchange(bytes int64, peers ...int) Phase {
	return Phase{mpisim.Exchange(bytes, peers...)}
}

// Job is an MPI-style application: one phase program per rank.
type Job struct {
	// Name labels the job in diagnostics.
	Name string
	// Ranks holds each rank's program.
	Ranks [][]Phase
}

// Placement pins ranks to the machine's logical CPUs.  CPUs 0 and 1 are
// the two SMT contexts of core 0; CPUs 2 and 3 of core 1; and so on
// chip-major across the topology — so ranks on CPUs 2k and 2k+1 always
// share a core and compete for its decode cycles.  On the default
// topology the valid CPUs are 0..3; Options.Topology widens the range.
// Use Topology.CPUOf / ParsePlacement to build placements from
// (chip, core, context) triples.
type Placement struct {
	// CPU maps rank -> logical CPU (0..Topology.Contexts()-1).
	CPU []int
	// Priority maps rank -> hardware thread priority.
	Priority []Priority
}

// PinInOrder pins rank i to CPU i at medium priority — the paper's
// reference configuration (Case A).  The placement is topology-agnostic:
// Run validates it against the run's Options.Topology and returns a
// descriptive error if n exceeds that machine's context count.  To
// validate eagerly against a known machine, use Topology.PinInOrder.
func PinInOrder(n int) Placement {
	pl := Placement{CPU: make([]int, n), Priority: make([]Priority, n)}
	for i := range pl.CPU {
		pl.CPU[i] = i
		pl.Priority[i] = PriorityMedium
	}
	return pl
}

// validate checks the placement against a topology, catching the
// out-of-range and double-pin mistakes up front with errors that name
// the topology instead of failing deep inside the simulator.
func (pl Placement) validate(t Topology) error {
	t = t.normalized()
	// A partially-specified topology (e.g. only Chips set) must fail
	// with its own descriptive error, not a zero-context machine.
	if err := t.Validate(); err != nil {
		return fmt.Errorf("smtbalance: invalid Options.Topology: %w", err)
	}
	if len(pl.CPU) != len(pl.Priority) {
		return fmt.Errorf("smtbalance: placement maps %d CPUs but %d priorities", len(pl.CPU), len(pl.Priority))
	}
	seen := make(map[int]bool)
	for r, cpu := range pl.CPU {
		if cpu < 0 || cpu >= t.Contexts() {
			return fmt.Errorf("smtbalance: rank %d is pinned to CPU %d, but the %s topology has only %d hardware contexts (CPUs 0..%d); grow Options.Topology (e.g. Chips: %d) or shrink the job",
				r, cpu, t, t.Contexts(), t.Contexts()-1, cpu/(t.CoresPerChip*t.SMTWays)+1)
		}
		if seen[cpu] {
			return fmt.Errorf("smtbalance: CPU %d is pinned twice", cpu)
		}
		seen[cpu] = true
	}
	return nil
}

// IterationStats is delivered to Options.OnIteration at every barrier
// release.
type IterationStats struct {
	// Index counts barrier releases from 0.
	Index int
	// ComputeCycles is each rank's computation time since the previous
	// release.
	ComputeCycles []int64
	// ArrivalCycle is each rank's barrier arrival time.
	ArrivalCycle []int64
	// ReleaseCycle is when the barrier opened.
	ReleaseCycle int64
}

// Options tunes a run.  The zero value (or nil) is the paper's
// environment: the patched kernel with 1000 Hz-equivalent timer ticks,
// warmed caches, no balancer, the single-chip machine.
//
//mtlint:cachekey run
type Options struct {
	// Topology sizes the machine as chips × cores-per-chip × SMT ways.
	// The zero value is the paper's 1×2×2 OpenPower 710 (4 contexts);
	// e.g. Topology{Chips: 2, CoresPerChip: 2, SMTWays: 2} runs 8-rank
	// jobs.  Every paper table assumes the default.
	Topology Topology
	// VanillaKernel removes the paper's kernel patch: priorities decay
	// to medium at the first interrupt and the procfs interface is gone.
	VanillaKernel bool
	// NoOSNoise disables timer ticks (for exactly-reproducible micro
	// experiments).
	NoOSNoise bool
	// ColdCaches skips the steady-state cache pre-warming.
	ColdCaches bool
	// Policy attaches an online balancing policy: at every barrier
	// release the policy observes the iteration and its requested
	// priority rewrites are applied through the patched kernel's procfs
	// interface (so a VanillaKernel run makes every policy inert).  See
	// the Policy interface, the built-ins (StaticPolicy, PaperDynamic,
	// HierarchicalPolicy, FeedbackPolicy) and ParsePolicy.  Setting both
	// Policy and the deprecated DynamicBalance is an error.
	Policy Policy
	// DynamicBalance attaches the online OS-level balancer (the paper's
	// Section VIII proposal): it watches per-iteration computation times
	// and retunes priorities through the procfs interface.
	//
	// Deprecated: DynamicBalance is the pre-policy spelling of
	// Policy: &PaperDynamic{MaxDiff: MaxPriorityDiff} and resolves to
	// exactly that policy; results are identical.  New code should set
	// Policy.
	DynamicBalance bool
	// MaxPriorityDiff bounds the dynamic balancer's priority difference
	// (default 1; the paper's Case D shows why large differences are
	// dangerous).
	//
	// Deprecated: MaxPriorityDiff parameterizes the deprecated
	// DynamicBalance knob only; set Policy: &PaperDynamic{MaxDiff: n}
	// instead.
	MaxPriorityDiff int
	// OnIteration, if set, is called at every barrier release.
	//
	//mtlint:cachekey-exempt presence disables result caching entirely (Machine.Run), so no cached entry can ever alias a hooked run
	OnIteration func(IterationStats)
	// LoadDrift, if set, rescales each compute phase's instruction
	// count as its rank enters it: before rank r starts its i-th
	// compute phase (counting from 0) the hook maps the phase's
	// declared count n to the count actually executed.  It is the
	// runtime alternative to a Scenario's precomputed per-iteration
	// loads, for open-ended or adaptive drifts not known when the job
	// is built.  Returned values below 1 are clamped to 1.  Like
	// OnIteration, LoadDrift disables result caching for Run calls and
	// is rejected in sweeps; the hook must be deterministic for runs to
	// be reproducible.
	//
	//mtlint:cachekey-exempt presence disables result caching entirely, like OnIteration; an arbitrary function has no hashable identity
	LoadDrift func(rank, phase int, n int64) int64
	// MaxCycles aborts runs that stop progressing (0 = generous default).
	MaxCycles int64
	// Exact forces pure per-cycle execution, disabling the phase-skip
	// fast path that detects steady-state iterations and advances across
	// them analytically.  Results are byte-identical either way — the
	// fast path only engages when a repetition is provably exact — so
	// the flag exists for benchmarking the simulator itself and as a
	// diagnostic escape hatch, not for accuracy.  Runs with OnIteration
	// or LoadDrift hooks are implicitly exact.
	//
	//mtlint:cachekey-exempt selects between execution strategies with byte-identical results, so both spellings must share cache entries (envJobKey audit)
	Exact bool
}

// RankSummary is one rank's outcome.
type RankSummary struct {
	// CPU, Core and Chip locate the rank on the machine (Core is the
	// global chip-major core index; Chip is 0 on the default topology).
	CPU, Core, Chip int
	// Priority is the rank's launch priority.
	Priority Priority
	// ComputePct, SyncPct and CommPct split the rank's time between
	// useful work, busy-waiting and communication.
	ComputePct, SyncPct, CommPct float64
	// Instructions counts completed instructions on the rank's context.
	Instructions int64
}

// Result is a finished run.
type Result struct {
	// Seconds is the execution time on the simulated 1.65 GHz clock.
	Seconds float64
	// Cycles is the execution time in processor cycles.
	Cycles int64
	// ImbalancePct is the paper's imbalance metric: the maximum
	// percentage of time any rank spent waiting.
	ImbalancePct float64
	// Ranks summarizes each rank.
	Ranks []RankSummary
	// Iterations is the number of barrier releases.
	Iterations int
	// BalancerMoves counts the priority rewrites the run's balancing
	// policy applied (writes that actually changed a rank's priority;
	// zero without a policy or on a vanilla kernel, where the procfs
	// path does not exist).
	BalancerMoves int
	// Policy is the canonical identity (PolicyID) of the balancing
	// policy that ran, "" if none was attached.
	Policy string
	// SkippedCycles counts simulated cycles the phase-skip fast path
	// advanced analytically instead of ticking through (see
	// Options.Exact).  Purely diagnostic: results are byte-identical
	// whatever its value.  Zero when the run executed under
	// Options.Exact or with OnIteration/LoadDrift hooks; a result served
	// from a Machine's cache reports the value of the run that populated
	// the entry (the cache deliberately keys both execution modes
	// together).
	SkippedCycles int64

	tr *trace.Trace
}

// Timeline renders the run as an ASCII timeline in the style of the
// paper's Figures 2-4: '█' compute, '░' waiting, '▓' communication.
func (r *Result) Timeline(width int) string { return r.tr.Render(width) }

// WriteTraceCSV writes the state intervals as CSV (rank,state,from,to).
func (r *Result) WriteTraceCSV(w io.Writer) error { return r.tr.WriteCSV(w) }

// WriteParaver writes a PARAVER-like .prv state-record trace.
func (r *Result) WriteParaver(w io.Writer) error { return r.tr.WritePRV(w) }

// inner converts the public job to its simulator form.  The conversion
// allocates fresh slices, so the result is safe to share across the
// concurrent runs of a sweep.
func (job Job) inner() *mpisim.Job {
	out := &mpisim.Job{Name: job.Name}
	for _, prog := range job.Ranks {
		var p mpisim.Program
		for _, ph := range prog {
			p = append(p, ph.inner)
		}
		out.Ranks = append(out.Ranks, p)
	}
	return out
}

// inner converts the public placement, validating the priorities.
func (pl Placement) inner() (mpisim.Placement, error) {
	ipl := mpisim.Placement{CPU: pl.CPU}
	for _, p := range pl.Priority {
		if !p.Valid() {
			return mpisim.Placement{}, fmt.Errorf("smtbalance: invalid priority %d", p)
		}
		ipl.Prio = append(ipl.Prio, hwpri.Priority(p))
	}
	return ipl, nil
}

// simConfig builds the simulator configuration the options describe,
// without the per-run OnIteration wiring.
func (opts *Options) simConfig() mpisim.Config {
	kcfg := oskernel.DefaultConfig()
	kcfg.Patched = !opts.VanillaKernel
	if opts.NoOSNoise {
		kcfg.TickPeriod = 0
	}
	cfg := mpisim.Config{
		Chip:       power5.DefaultConfig(),
		Topology:   opts.Topology.inner(),
		Kernel:     kcfg,
		KernelSet:  true,
		MaxCycles:  opts.MaxCycles,
		ColdCaches: opts.ColdCaches,
		Exact:      opts.Exact,
	}
	if drift := opts.LoadDrift; drift != nil {
		cfg.LoadDrift = func(rank, idx int, load workload.Load) workload.Load {
			load.N = drift(rank, idx, load.N)
			return load
		}
	}
	return cfg
}

// Run executes the job under the placement on the machine described by
// Options.Topology (the paper's single chip by default).
//
// Deprecated: Run is a thin wrapper over a Machine — the shared default
// Machine for nil opts (whose bounded result cache then memoizes
// repeated configurations process-wide; Machine.ClearCache exists for
// callers who hold their own), a transient one otherwise.  New code
// should build a Machine once with NewMachine and call Machine.Run,
// which adds context cancellation and result caching.
//
//mtlint:ctx-root deprecated ctx-less wrapper; Machine.Run is the cancellable form
func Run(job Job, pl Placement, opts *Options) (*Result, error) {
	m, err := machineFor(opts)
	if err != nil {
		return nil, err
	}
	return m.Run(context.Background(), job, pl)
}

// resolvePolicy returns the run's balancing policy (nil means none),
// honoring the deprecated DynamicBalance/MaxPriorityDiff knobs, which
// resolve to the extracted PaperDynamic built-in with identical
// behavior.  The resolved policy is what envJobKey hashes, so the three
// policy-selecting fields flow into the cache key through here.
//
//mtlint:cachekey-hasher run
func (opts *Options) resolvePolicy() (Policy, error) {
	if opts.Policy != nil {
		if opts.DynamicBalance {
			return nil, fmt.Errorf("smtbalance: Options.Policy and the deprecated Options.DynamicBalance are mutually exclusive")
		}
		return opts.Policy, nil
	}
	if opts.DynamicBalance {
		return &PaperDynamic{MaxDiff: opts.MaxPriorityDiff}, nil
	}
	return nil, nil
}

// policyCacheable reports whether runs under pol may be memoized: a nil
// policy is trivially deterministic, and a PolicyBinder starts every run
// from a fresh bound instance.  A bare Policy may carry hidden cross-run
// state, so its runs are never cached.
func policyCacheable(pol Policy) bool {
	if pol == nil {
		return true
	}
	_, ok := pol.(PolicyBinder)
	return ok
}

// stats converts the simulator's iteration event to the public form.
func stats(ev mpisim.IterationEvent) IterationStats {
	return IterationStats{
		Index:         ev.Index,
		ComputeCycles: ev.ComputeCycles,
		ArrivalCycle:  ev.Arrival,
		ReleaseCycle:  ev.Release,
	}
}

// policyHook installs pol's observe→apply loop (and the caller's
// OnIteration callback, chained after it) as cfg.OnIteration.  Every
// action the policy returns is validated and applied through the
// kernel's procfs path — the only mechanism by which any balancer may
// act, so VanillaKernel runs leave all actions inert, exactly as on real
// hardware without the paper's patch.  The returned counter accumulates
// applied writes that changed a rank's priority (Result.BalancerMoves);
// it is nil when neither hook is needed.
func policyHook(cfg *mpisim.Config, pol Policy, topo Topology, pl Placement, onIter func(IterationStats)) *int {
	if pol == nil && onIter == nil {
		return nil
	}
	run := pol
	if b, ok := pol.(PolicyBinder); ok {
		run = b.Bind(topo, pl)
	}
	moves := new(int)
	cur := append([]Priority(nil), pl.Priority...)
	cfg.OnIteration = func(ev mpisim.IterationEvent) {
		if run != nil {
			for _, act := range run.Observe(stats(ev)) {
				if act.Rank < 0 || act.Rank >= len(cur) || !act.Priority.Valid() {
					continue // a buggy custom policy must not crash the run
				}
				if !ev.ApplyPriority(act.Rank, hwpri.Priority(act.Priority)) {
					continue
				}
				if cur[act.Rank] != act.Priority {
					cur[act.Rank] = act.Priority
					*moves++
				}
			}
		}
		if onIter != nil {
			onIter(stats(ev))
		}
	}
	return moves
}

// runSim executes one simulation under the options with the resolved
// balancing policy, uncached.  The placement must already be validated
// against opts.Topology.
func runSim(ctx context.Context, job Job, pl Placement, opts *Options, pol Policy) (*Result, error) {
	inner := job.inner()
	ipl, err := pl.inner()
	if err != nil {
		return nil, err
	}
	cfg := opts.simConfig()
	moves := policyHook(&cfg, pol, opts.Topology, pl, opts.OnIteration)
	res, err := mpisim.RunCtx(ctx, inner, ipl, cfg)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Seconds:       res.Seconds,
		Cycles:        res.Cycles,
		ImbalancePct:  res.Imbalance,
		Iterations:    res.Iterations,
		Policy:        PolicyID(pol),
		SkippedCycles: res.SkippedCycles,
		tr:            res.Trace,
	}
	if moves != nil {
		out.BalancerMoves = *moves
	}
	for _, rr := range res.Ranks {
		out.Ranks = append(out.Ranks, RankSummary{
			CPU:          rr.CPU,
			Core:         rr.Core,
			Chip:         rr.Chip,
			Priority:     Priority(rr.Prio),
			ComputePct:   rr.ComputePct,
			SyncPct:      rr.SyncPct,
			CommPct:      rr.CommPct,
			Instructions: rr.Instructions,
		})
	}
	return out, nil
}

// SuggestPlacement derives a static placement and priority plan from the
// per-rank work estimates (e.g. per-iteration instruction counts from a
// profiling run): the heaviest rank is paired with the lightest on the
// same core and each pair's priority difference is chosen with the
// decode-share performance model — the procedure the paper's authors
// followed by hand for Tables IV-VI.  It plans for the default 1×2×2
// machine; use Topology.SuggestPlacement for larger nodes.
func SuggestPlacement(works []float64) (Placement, error) {
	return DefaultTopology().SuggestPlacement(works)
}
