package smtbalance

import (
	"encoding/json"
	"fmt"

	"repro/internal/sweep"
	"repro/internal/trace"
)

// This file defines the on-disk record forms of the result cache's two
// layers.  Records are JSON for debuggability (an operator can cat a
// cache entry), and every numeric field round-trips exactly —
// encoding/json emits the shortest float64 representation that decodes
// to the same bits — so a result revived from disk is indistinguishable
// from the run that produced it, trace included.
//
// diskVersion names the store's directory: "v2" tracks the cache-key
// format (the envJobKey version tag), "r1" the record schema below.
// Bump the matching half on any change — old trees then become
// invisible instead of corrupt.
const diskVersion = "v2r1"

// diskInterval is one trace interval on disk (state, from, to).
type diskInterval struct {
	S uint8 `json:"s"`
	F int64 `json:"f"`
	T int64 `json:"t"`
}

// diskRank mirrors RankSummary on disk.
type diskRank struct {
	CPU          int     `json:"cpu"`
	Core         int     `json:"core"`
	Chip         int     `json:"chip"`
	Priority     int     `json:"priority"`
	ComputePct   float64 `json:"compute_pct"`
	SyncPct      float64 `json:"sync_pct"`
	CommPct      float64 `json:"comm_pct"`
	Instructions int64   `json:"instructions"`
}

// diskResult is a full Result on disk, trace included.
type diskResult struct {
	Seconds       float64          `json:"seconds"`
	Cycles        int64            `json:"cycles"`
	ImbalancePct  float64          `json:"imbalance_pct"`
	Iterations    int              `json:"iterations"`
	BalancerMoves int              `json:"balancer_moves,omitempty"`
	Policy        string           `json:"policy,omitempty"`
	SkippedCycles int64            `json:"skipped_cycles,omitempty"`
	Ranks         []diskRank       `json:"ranks"`
	TraceEnd      int64            `json:"trace_end"`
	Trace         [][]diskInterval `json:"trace"`
}

// diskMetrics is a sweep-point metrics record on disk.
type diskMetrics struct {
	Cycles       int64   `json:"cycles"`
	Seconds      float64 `json:"seconds"`
	ImbalancePct float64 `json:"imbalance_pct"`
}

// encodeResult renders a Result as its disk record.  Results without a
// trace are not persistable (the record would revive incompletely) and
// report ok=false.
func encodeResult(r *Result) (data []byte, ok bool) {
	if r.tr == nil {
		return nil, false
	}
	rec := diskResult{
		Seconds:       r.Seconds,
		Cycles:        r.Cycles,
		ImbalancePct:  r.ImbalancePct,
		Iterations:    r.Iterations,
		BalancerMoves: r.BalancerMoves,
		Policy:        r.Policy,
		SkippedCycles: r.SkippedCycles,
		TraceEnd:      r.tr.End(),
	}
	for _, rs := range r.Ranks {
		rec.Ranks = append(rec.Ranks, diskRank{
			CPU: rs.CPU, Core: rs.Core, Chip: rs.Chip, Priority: int(rs.Priority),
			ComputePct: rs.ComputePct, SyncPct: rs.SyncPct, CommPct: rs.CommPct,
			Instructions: rs.Instructions,
		})
	}
	rec.Trace = make([][]diskInterval, r.tr.NumRanks())
	for i := 0; i < r.tr.NumRanks(); i++ {
		for _, iv := range r.tr.Intervals(i) {
			rec.Trace[i] = append(rec.Trace[i], diskInterval{S: uint8(iv.State), F: iv.From, T: iv.To})
		}
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return nil, false // unreachable: the record is plain data
	}
	return data, true
}

// decodeResult revives a Result from its disk record.  Any
// inconsistency — bad JSON, an invalid trace — is an error; callers
// treat it as a cache miss and re-simulate.
func decodeResult(data []byte) (*Result, error) {
	var rec diskResult
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("smtbalance: corrupt result record: %w", err)
	}
	ranks := make([][]trace.Interval, len(rec.Trace))
	for i, ivs := range rec.Trace {
		for _, iv := range ivs {
			ranks[i] = append(ranks[i], trace.Interval{State: trace.State(iv.S), From: iv.F, To: iv.T})
		}
	}
	tr, err := trace.FromIntervals(ranks, rec.TraceEnd)
	if err != nil {
		return nil, fmt.Errorf("smtbalance: corrupt result record: %w", err)
	}
	out := &Result{
		Seconds:       rec.Seconds,
		Cycles:        rec.Cycles,
		ImbalancePct:  rec.ImbalancePct,
		Iterations:    rec.Iterations,
		BalancerMoves: rec.BalancerMoves,
		Policy:        rec.Policy,
		SkippedCycles: rec.SkippedCycles,
		tr:            tr,
	}
	for _, dr := range rec.Ranks {
		out.Ranks = append(out.Ranks, RankSummary{
			CPU: dr.CPU, Core: dr.Core, Chip: dr.Chip, Priority: Priority(dr.Priority),
			ComputePct: dr.ComputePct, SyncPct: dr.SyncPct, CommPct: dr.CommPct,
			Instructions: dr.Instructions,
		})
	}
	return out, nil
}

// encodeMetrics renders a sweep-point metrics record.
func encodeMetrics(m sweep.Metrics) []byte {
	data, err := json.Marshal(diskMetrics{Cycles: m.Cycles, Seconds: m.Seconds, ImbalancePct: m.ImbalancePct})
	if err != nil {
		panic(err) // unreachable: three scalars
	}
	return data
}

// decodeMetrics revives a sweep-point metrics record.
func decodeMetrics(data []byte) (sweep.Metrics, error) {
	var rec diskMetrics
	if err := json.Unmarshal(data, &rec); err != nil {
		return sweep.Metrics{}, fmt.Errorf("smtbalance: corrupt metrics record: %w", err)
	}
	return sweep.Metrics{Cycles: rec.Cycles, Seconds: rec.Seconds, ImbalancePct: rec.ImbalancePct}, nil
}
