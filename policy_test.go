package smtbalance

//lint:file-ignore SA1019 the deprecated Run/Sweep wrappers and DynamicBalance knobs are exercised on purpose: these tests pin that the old spellings stay behavior-identical to their replacements

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// iterativeJob builds a compute+barrier job with the given per-rank
// loads repeated for iters iterations — enough barriers for online
// policies to observe and react.
func iterativeJob(name string, loads []int64, iters int) Job {
	job := Job{Name: name}
	for _, n := range loads {
		var prog []Phase
		for i := 0; i < iters; i++ {
			prog = append(prog, Compute("fpu", n), Barrier())
		}
		job.Ranks = append(job.Ranks, prog)
	}
	return job
}

// scalingJob is the 2-chip BT-MZ-style scaling job (the Table V load
// distribution replicated per chip), paired heavy-with-light per core so
// priorities have leverage.
func scalingJob(iters int) Job {
	return iterativeJob("btmz-scale-2chip",
		[]int64{40000, 7200, 26800, 9600, 40000, 7200, 26800, 9600}, iters)
}

func TestPolicyRegistry(t *testing.T) {
	names := Policies()
	for _, want := range []string{"static", "dyn", "hier", "feedback"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("built-in policy %q not registered (have %v)", want, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Policies() not sorted: %v", names)
		}
	}

	if err := RegisterPolicy("dyn", func(map[string]string) (Policy, error) { return StaticPolicy{}, nil }); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := RegisterPolicy("bad,name", func(map[string]string) (Policy, error) { return StaticPolicy{}, nil }); err == nil {
		t.Error("delimiter in policy name accepted")
	}
	if err := RegisterPolicy("nilfactory", nil); err == nil {
		t.Error("nil factory accepted")
	}
}

func TestParsePolicy(t *testing.T) {
	pol, err := ParsePolicy("dyn, maxdiff=2 ,threshold=0.1")
	if err != nil {
		t.Fatal(err)
	}
	dyn, ok := pol.(*PaperDynamic)
	if !ok {
		t.Fatalf("ParsePolicy(dyn) = %T", pol)
	}
	if dyn.MaxDiff != 2 || dyn.Threshold != 0.1 {
		t.Errorf("parsed params = %+v", dyn)
	}
	if got := PolicyID(pol); got != "dyn(hysteresis=2,maxdiff=2,threshold=0.1)" {
		t.Errorf("PolicyID = %q", got)
	}

	if pol, err = ParsePolicy("static"); err != nil {
		t.Fatal(err)
	}
	if _, ok := pol.(StaticPolicy); !ok {
		t.Errorf("ParsePolicy(static) = %T", pol)
	}
	if got := PolicyID(pol); got != "static" {
		t.Errorf("PolicyID(static) = %q", got)
	}
	if PolicyID(nil) != "" {
		t.Error("PolicyID(nil) not empty")
	}

	for _, bad := range []string{
		"", "nosuchpolicy", "dyn,maxdiff", "dyn,maxdiff=", "dyn,maxdiff=abc",
		"dyn,bogus=1", "static,stray=2", "feedback,gain=x",
		"dyn,maxdiff=1,maxdiff=2",
		// Explicit out-of-range values must fail loudly, never silently
		// clamp to a different policy than requested.
		"dyn,maxdiff=9", "dyn,maxdiff=0", "dyn,maxdiff=-1",
		"dyn,threshold=0", "dyn,threshold=2", "dyn,hysteresis=0",
		"hier,maxdiff=5", "feedback,gain=-1", "feedback,deadband=1.5",
		"feedback,threshold=0.1", // feedback has no threshold knob
	} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q) accepted", bad)
		}
	}
}

// Regression: an unknown policy name's error must list the registered
// names — a typo like "dyn2" should teach what exists, not stonewall.
// ParseScenario mirrors this behavior (see scenario_test.go).
func TestParsePolicyUnknownNameListsRegistered(t *testing.T) {
	_, err := ParsePolicy("dyn2")
	if err == nil {
		t.Fatal("ParsePolicy(dyn2) accepted")
	}
	if !strings.Contains(err.Error(), "unknown policy") {
		t.Errorf("error %q does not say the name is unknown", err)
	}
	for _, name := range []string{"static", "dyn", "hier", "feedback"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("ParsePolicy(dyn2) error %q does not mention registered policy %q", err, name)
		}
	}
}

// TestDeprecatedDynamicBalanceMatchesPaperDynamic is the regression the
// redesign promises: the deprecated knobs are a pure alias for the
// extracted PaperDynamic policy.
func TestDeprecatedDynamicBalanceMatchesPaperDynamic(t *testing.T) {
	job := iterativeJob("alias", []int64{8000, 32000, 8000, 32000}, 10)
	pl := PinInOrder(4)
	old, err := Run(job, pl, &Options{NoOSNoise: true, DynamicBalance: true, MaxPriorityDiff: 2})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := Run(job, pl, &Options{NoOSNoise: true, Policy: &PaperDynamic{MaxDiff: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if old.Cycles != pol.Cycles || old.Seconds != pol.Seconds || old.ImbalancePct != pol.ImbalancePct {
		t.Errorf("deprecated path diverged: cycles %d vs %d, imbalance %.4f vs %.4f",
			old.Cycles, pol.Cycles, old.ImbalancePct, pol.ImbalancePct)
	}
	if old.BalancerMoves != pol.BalancerMoves || old.BalancerMoves == 0 {
		t.Errorf("moves diverged: %d vs %d", old.BalancerMoves, pol.BalancerMoves)
	}
	if old.Policy != pol.Policy || old.Policy != "dyn(hysteresis=2,maxdiff=2,threshold=0.05)" {
		t.Errorf("resolved policy diverged: %q vs %q", old.Policy, pol.Policy)
	}
	if !reflect.DeepEqual(old.Ranks, pol.Ranks) {
		t.Error("per-rank summaries diverged")
	}

	if _, err := Run(job, pl, &Options{DynamicBalance: true, Policy: StaticPolicy{}}); err == nil {
		t.Error("Policy together with DynamicBalance accepted")
	}
}

// TestPaperDynamicHighCorePlacement: pairs pinned to high core indices
// (here core 2, the second chip's first core) must be managed too — the
// pair discovery walks cores up to the highest one used, not the rank
// count.
func TestPaperDynamicHighCorePlacement(t *testing.T) {
	job := iterativeJob("highcore", []int64{8000, 32000}, 10)
	pl := Placement{CPU: []int{4, 5}, Priority: []Priority{PriorityMedium, PriorityMedium}}
	topo := Topology{Chips: 2, CoresPerChip: 2, SMTWays: 2}
	dyn, err := Run(job, pl, &Options{NoOSNoise: true, Topology: topo, Policy: &PaperDynamic{MaxDiff: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if dyn.BalancerMoves == 0 {
		t.Error("PaperDynamic never moved for a pair on core 2")
	}
	static, err := Run(job, pl, &Options{NoOSNoise: true, Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Cycles >= static.Cycles {
		t.Errorf("dynamic balancing on core 2 did not help: %d >= %d", dyn.Cycles, static.Cycles)
	}
}

// TestVanillaKernelDisarmsPolicies checks the procfs plumbing: without
// the paper's kernel patch no policy can act, so a policy run equals the
// static run exactly.
func TestVanillaKernelDisarmsPolicies(t *testing.T) {
	job := iterativeJob("vanilla", []int64{8000, 32000}, 8)
	pl := PinInOrder(2)
	base, err := Run(job, pl, &Options{VanillaKernel: true, NoOSNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := Run(job, pl, &Options{VanillaKernel: true, NoOSNoise: true, Policy: &PaperDynamic{MaxDiff: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if dyn.BalancerMoves != 0 {
		t.Errorf("policy moved %d times on a vanilla kernel", dyn.BalancerMoves)
	}
	if dyn.Cycles != base.Cycles {
		t.Errorf("inert policy changed the run: %d vs %d cycles", dyn.Cycles, base.Cycles)
	}
}

// TestPolicyCacheKeyIdentity audits the result-cache canonical key
// against the policy axis: distinct policies (or parameters) must never
// collide, the deprecated knobs must share entries with their policy
// spelling, and every other behavior-affecting Options field must keep
// splitting the key.
func TestPolicyCacheKeyIdentity(t *testing.T) {
	job := iterativeJob("key", []int64{1000, 2000}, 1)
	base := Options{}
	key := func(opts Options) [32]byte {
		pol, err := opts.resolvePolicy()
		if err != nil {
			t.Fatal(err)
		}
		return envJobKey(opts.Topology, opts, pol, job)
	}

	k0 := key(base)
	seen := map[[32]byte]string{k0: "default"}
	for _, v := range []struct {
		label string
		opts  Options
	}{
		{"vanilla", Options{VanillaKernel: true}},
		{"no-noise", Options{NoOSNoise: true}},
		{"cold", Options{ColdCaches: true}},
		{"max-cycles", Options{MaxCycles: 12345}},
		{"topology", Options{Topology: Topology{Chips: 2, CoresPerChip: 2, SMTWays: 2}}},
		{"static", Options{Policy: StaticPolicy{}}},
		{"dyn", Options{Policy: &PaperDynamic{}}},
		{"dyn-maxdiff2", Options{Policy: &PaperDynamic{MaxDiff: 2}}},
		{"hier", Options{Policy: &HierarchicalPolicy{}}},
		{"feedback", Options{Policy: &FeedbackPolicy{}}},
		{"feedback-gain8", Options{Policy: &FeedbackPolicy{Gain: 8}}},
	} {
		k := key(v.opts)
		if prev, dup := seen[k]; dup {
			t.Errorf("cache key collision: %q and %q hash identically", v.label, prev)
		}
		seen[k] = v.label
	}

	// The deprecated knobs must alias their policy spelling — same key,
	// so a Machine serving both forms shares cache entries.
	dep := key(Options{DynamicBalance: true, MaxPriorityDiff: 2})
	pol := key(Options{Policy: &PaperDynamic{MaxDiff: 2}})
	if dep != pol {
		t.Error("deprecated DynamicBalance and PaperDynamic split the cache key")
	}

	// The key hashes policy identity structurally, so two custom
	// policies whose Name/Params render to the same PolicyID string
	// (through the grammar's delimiters) still never collide.
	a := fakePolicy{name: "p", params: map[string]string{"a": "1,b=2"}}
	b := fakePolicy{name: "p", params: map[string]string{"a": "1", "b": "2"}}
	if PolicyID(a) != PolicyID(b) {
		t.Fatalf("test premise broken: rendered IDs differ (%q vs %q)", PolicyID(a), PolicyID(b))
	}
	if key(Options{Policy: a}) == key(Options{Policy: b}) {
		t.Error("distinct policies with colliding rendered IDs share a cache key")
	}
}

// fakePolicy is a bindable policy with arbitrary identity, for the
// cache-key collision tests.
type fakePolicy struct {
	name   string
	params map[string]string
}

func (f fakePolicy) Name() string                            { return f.name }
func (f fakePolicy) Params() map[string]string               { return f.params }
func (f fakePolicy) Observe(IterationStats) []PriorityAction { return nil }
func (f fakePolicy) Bind(Topology, Placement) Policy         { return f }

// TestPolicySweepRanksPolicies is the acceptance scenario: rank the four
// built-ins on the 2-chip scaling job and require a non-paper policy to
// beat StaticPolicy on imbalance, deterministically.
func TestPolicySweepRanksPolicies(t *testing.T) {
	job := scalingJob(10)
	m, err := NewMachine(&Options{Topology: Topology{Chips: 2, CoresPerChip: 2, SMTWays: 2}})
	if err != nil {
		t.Fatal(err)
	}
	space := Space{
		FixPairing: true,
		Priorities: []Priority{PriorityMedium},
		Policies: []Policy{
			StaticPolicy{}, &PaperDynamic{}, &HierarchicalPolicy{}, &FeedbackPolicy{},
		},
	}
	res, err := m.SweepAll(context.Background(), job, space, &SweepOptions{Objective: MinimizeImbalance()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 4 {
		t.Fatalf("ranked %d entries, want 4 (one per policy)", len(res.Entries))
	}
	if res.Evaluated != 4 {
		t.Errorf("Evaluated = %d, want 4", res.Evaluated)
	}
	byPolicy := map[string]SweepEntry{}
	for _, e := range res.Entries {
		if e.Policy == "" {
			t.Fatalf("entry missing policy identity: %+v", e)
		}
		name, _, _ := strings.Cut(e.Policy, "(")
		byPolicy[name] = e
	}
	for _, want := range []string{"static", "dyn", "hier", "feedback"} {
		if _, ok := byPolicy[want]; !ok {
			t.Fatalf("policy %q missing from ranking (have %v)", want, res.Entries)
		}
	}
	static := byPolicy["static"]
	if byPolicy["hier"].ImbalancePct >= static.ImbalancePct &&
		byPolicy["feedback"].ImbalancePct >= static.ImbalancePct {
		t.Errorf("no non-paper policy beat static on imbalance: hier %.2f, feedback %.2f, static %.2f",
			byPolicy["hier"].ImbalancePct, byPolicy["feedback"].ImbalancePct, static.ImbalancePct)
	}
	if best := res.Entries[0]; strings.HasPrefix(best.Policy, "static") {
		t.Errorf("static won the imbalance ranking: %+v", best)
	}

	// Determinism: a second sweep (served from the metrics cache) must
	// reproduce the ranking exactly.
	again, err := m.SweepAll(context.Background(), job, space, &SweepOptions{Objective: MinimizeImbalance()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Entries, again.Entries) {
		t.Error("policy sweep not deterministic across cache hits")
	}
	if st := m.CacheStats(); st.Hits == 0 {
		t.Error("second policy sweep did not hit the metrics cache")
	}
}

// TestPolicySweepRejectsBadPolicies covers the sweep-side policy
// validation: nil entries and non-bindable policies fail up front.
func TestPolicySweepRejectsBadPolicies(t *testing.T) {
	m, err := NewMachine(nil)
	if err != nil {
		t.Fatal(err)
	}
	job := iterativeJob("bad", []int64{1000, 2000}, 1)
	ctx := context.Background()
	if _, err := m.SweepAll(ctx, job, Space{Policies: []Policy{nil}}, nil); err == nil || !strings.Contains(err.Error(), "nil") {
		t.Errorf("nil policy in sweep: err = %v", err)
	}
	if _, err := m.SweepAll(ctx, job, Space{Policies: []Policy{unboundPolicy{}}}, nil); err == nil || !strings.Contains(err.Error(), "PolicyBinder") {
		t.Errorf("non-bindable policy in sweep: err = %v", err)
	}
	// The deprecated machine-level DynamicBalance knob keeps its
	// original sweep rejection; a machine-level Policy may not be
	// combined with a policy axis (ambiguous intent).
	mdep, err := NewMachine(&Options{DynamicBalance: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mdep.SweepAll(ctx, job, Space{}, nil); err == nil || !strings.Contains(err.Error(), "DynamicBalance") {
		t.Errorf("machine-level DynamicBalance in sweep: err = %v", err)
	}
	mp, err := NewMachine(&Options{Policy: &PaperDynamic{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mp.SweepAll(ctx, job, Space{Policies: []Policy{StaticPolicy{}}}, nil); err == nil || !strings.Contains(err.Error(), "Space.Policies") {
		t.Errorf("machine policy plus Space.Policies: err = %v", err)
	}
}

// TestPolicyMachineSweepAndOptimize: a machine configured with a
// bindable Options.Policy sweeps and optimizes under that policy — the
// README's recommended configuration must support the whole workflow.
func TestPolicyMachineSweepAndOptimize(t *testing.T) {
	// Two ranks keep Optimize's OS-settable space small (25 configs).
	job := iterativeJob("polmach", []int64{12000, 3000}, 6)
	m, err := NewMachine(&Options{Policy: &FeedbackPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := m.SweepAll(ctx, job, Space{FixPairing: true, Priorities: []Priority{PriorityMedium}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 || !strings.HasPrefix(res.Entries[0].Policy, "feedback") {
		t.Fatalf("policy-machine sweep entries = %+v", res.Entries)
	}
	pl, best, err := m.Optimize(ctx, job, MinimizeCycles())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(best.Policy, "feedback") {
		t.Errorf("Optimize winner ran policy %q, want the machine's feedback policy", best.Policy)
	}
	// The winner's re-run must agree with its swept metrics.
	rerun, err := m.Run(ctx, job, pl)
	if err != nil {
		t.Fatal(err)
	}
	if rerun.Cycles != best.Cycles {
		t.Errorf("Optimize result (%d cycles) does not match its placement's run (%d)", best.Cycles, rerun.Cycles)
	}
}

// unboundPolicy implements Policy but not PolicyBinder.
type unboundPolicy struct{}

func (unboundPolicy) Name() string                            { return "unbound" }
func (unboundPolicy) Params() map[string]string               { return nil }
func (unboundPolicy) Observe(IterationStats) []PriorityAction { return nil }

// TestUnboundPolicyRunsUncached: a bare Policy still works with
// Machine.Run but is never memoized (it may carry cross-run state).
func TestUnboundPolicyRunsUncached(t *testing.T) {
	m, err := NewMachine(&Options{Policy: unboundPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	job := iterativeJob("unbound", []int64{1000, 2000}, 2)
	ctx := context.Background()
	if _, err := m.Run(ctx, job, PinInOrder(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(ctx, job, PinInOrder(2)); err != nil {
		t.Fatal(err)
	}
	if st := m.CacheStats(); st.Hits != 0 || st.Results != 0 {
		t.Errorf("unbound policy runs were cached: %+v", st)
	}
}

// TestSessionBalance exercises the one-call profile → re-place → online
// retune loop.
func TestSessionBalance(t *testing.T) {
	job := iterativeJob("balance", []int64{40000, 7200, 26800, 9600}, 10)
	m, err := NewMachine(&Options{NoOSNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Reference: naive pin-in-order, no balancing at all.
	naive, err := m.Run(ctx, job, PinInOrder(4))
	if err != nil {
		t.Fatal(err)
	}

	s := m.NewSession(job)
	res, err := s.Balance(ctx, &FeedbackPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy == "" || !strings.HasPrefix(res.Policy, "feedback") {
		t.Errorf("Balance ran policy %q, want feedback", res.Policy)
	}
	if s.Last() != res {
		t.Error("Balance did not record the session's last result")
	}
	if res.Cycles >= naive.Cycles {
		t.Errorf("balanced run (%d cycles) not better than naive (%d)", res.Cycles, naive.Cycles)
	}
	if res.ImbalancePct >= naive.ImbalancePct {
		t.Errorf("balanced imbalance %.2f%% not better than naive %.2f%%", res.ImbalancePct, naive.ImbalancePct)
	}

	// A nil policy runs the suggested static plan alone.
	static, err := m.NewSession(job).Balance(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if static.Policy != "" {
		t.Errorf("nil-policy Balance reported policy %q", static.Policy)
	}
}

// TestPolicySweepWorkerDeterminism: the policy × placement × priority
// ranking must not depend on the worker-pool size.
func TestPolicySweepWorkerDeterminism(t *testing.T) {
	job := iterativeJob("det", []int64{12000, 3000, 9000, 4500}, 6)
	space := Space{
		FixPairing: true,
		Priorities: []Priority{PriorityLow, PriorityMedium},
		Policies:   []Policy{StaticPolicy{}, &FeedbackPolicy{}},
	}
	var rankings [][]SweepEntry
	for _, workers := range []int{1, 4} {
		m, err := NewMachine(nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.SweepAll(context.Background(), job, space, &SweepOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.Evaluated != 2*16 {
			t.Fatalf("evaluated %d configurations, want 32", res.Evaluated)
		}
		rankings = append(rankings, res.Entries)
	}
	if !reflect.DeepEqual(rankings[0], rankings[1]) {
		t.Error("policy sweep ranking depends on the worker count")
	}
}
