package smtbalance

import (
	"reflect"
	"strings"
	"testing"
)

func TestBuiltinScenariosRegistered(t *testing.T) {
	names := Scenarios()
	for _, want := range []string{"uniform", "ramp", "step", "phaseshift", "bursty", "bimodal"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("built-in scenario %q not registered (have %v)", want, names)
		}
	}
}

func TestParseScenario(t *testing.T) {
	sc, err := ParseScenario("ramp, ranks=8 ,skew=1.5")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name() != "ramp" {
		t.Fatalf("ParseScenario(ramp) name = %q", sc.Name())
	}
	p := sc.Params()
	if p["ranks"] != "8" || p["skew"] != "1.5" {
		t.Errorf("effective params = %v, want ranks=8 skew=1.5", p)
	}
	// Defaults fill in and render canonically.
	if p["iters"] != "5" || p["base"] != "20000" || p["kind"] != "fpu" {
		t.Errorf("defaulted params = %v", p)
	}
	id := ScenarioID(sc)
	if id != "ramp(base=20000,iters=5,kind=fpu,ranks=8,skew=1.5)" {
		t.Errorf("ScenarioID = %q", id)
	}
}

func TestParseScenarioRejects(t *testing.T) {
	for _, bad := range []string{
		"",                     // empty spec
		"   ",                  // name missing
		"warp",                 // unknown shape
		"ramp,skw=2",           // unknown parameter
		"ramp,skew",            // not key=value
		"ramp,skew=2,skew=3",   // duplicate
		"ramp,skew=0",          // out of range (paramFloat is exclusive at min)
		"uniform,ranks=-1",     // negative
		"uniform,ranks=999999", // over the cap
		"uniform,base=0",       // zero base
		"uniform,iters=0",      // zero iterations
		"uniform,kind=spin",    // spinning compute never terminates
		"uniform,kind=nope",    // unknown kernel
		"bimodal,kind2=spin",   // same for the memory side
		"bursty,seed=-1",       // negative seed
		"step,outlier=-2",      // negative outlier
	} {
		if _, err := ParseScenario(bad); err == nil {
			t.Errorf("ParseScenario(%q) accepted", bad)
		}
	}
}

// Regression (and the ParsePolicy mirror): an unknown name's error must
// list what IS registered — a typo like "ramp2" or "dyn2" should teach,
// not stonewall.
func TestParseScenarioUnknownNameListsRegistered(t *testing.T) {
	_, err := ParseScenario("ramp2")
	if err == nil {
		t.Fatal("ParseScenario(ramp2) accepted")
	}
	for _, name := range []string{"uniform", "ramp", "step", "phaseshift", "bursty", "bimodal"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("ParseScenario(ramp2) error %q does not mention registered scenario %q", err, name)
		}
	}
}

// A scenario spec round-trips through its effective parameters: parsing
// "name,k=v,..." rebuilt from Name+Params yields the same identity.
func TestScenarioSpecRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"uniform", "ramp,skew=2.5", "step,outlier=1,skew=6",
		"phaseshift,period=3", "bursty,amp=1.5,seed=99", "bimodal,kind2=l2",
	} {
		sc, err := ParseScenario(spec)
		if err != nil {
			t.Fatalf("ParseScenario(%q): %v", spec, err)
		}
		parts := []string{sc.Name()}
		for k, v := range sc.Params() {
			parts = append(parts, k+"="+v)
		}
		round, err := ParseScenario(strings.Join(parts, ","))
		if err != nil {
			t.Fatalf("round-trip of %q (%q): %v", spec, strings.Join(parts, ","), err)
		}
		if ScenarioID(round) != ScenarioID(sc) {
			t.Errorf("round-trip of %q: ID %q != %q", spec, ScenarioID(round), ScenarioID(sc))
		}
	}
}

func TestScenarioJobShapes(t *testing.T) {
	topo := DefaultTopology()
	for _, spec := range []string{"uniform", "ramp", "step", "phaseshift", "bursty", "bimodal"} {
		sc, err := ParseScenario(spec)
		if err != nil {
			t.Fatal(err)
		}
		job, err := sc.Job(topo)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if len(job.Ranks) != topo.Contexts() {
			t.Errorf("%s: ranks=0 generated %d ranks, want %d", spec, len(job.Ranks), topo.Contexts())
		}
		for r, prog := range job.Ranks {
			if len(prog) != 2*5 { // default 5 iterations of compute+barrier
				t.Errorf("%s rank %d has %d phases, want 10", spec, r, len(prog))
			}
		}
		if job.Name != ScenarioID(sc) {
			t.Errorf("%s: job name %q != scenario ID %q", spec, job.Name, ScenarioID(sc))
		}
		// The generated job must actually run on its topology.
		m, err := NewMachine(nil)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := topo.PinInOrder(len(job.Ranks))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(t.Context(), job, pl); err != nil {
			t.Errorf("%s: generated job does not run: %v", spec, err)
		}
	}
}

func TestScenarioJobErrors(t *testing.T) {
	topo := DefaultTopology()
	for _, tc := range []struct{ spec, wantSub string }{
		{"uniform,ranks=6", "hardware contexts"}, // over the topology
		{"uniform,ranks=3", "even rank count"},   // odd
		{"phaseshift,ranks=2", ""},               // fine: sanity that small is OK
	} {
		sc, err := ParseScenario(tc.spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		_, err = sc.Job(topo)
		if tc.wantSub == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.spec, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %v, want substring %q", tc.spec, err, tc.wantSub)
		}
	}
}

// Scenario generation is deterministic: equal specs generate equal jobs
// (the bursty PRNG included), and the seed really steers the draw.
func TestScenarioDeterminism(t *testing.T) {
	topo := DefaultTopology()
	for _, spec := range []string{"uniform", "ramp", "bursty,amp=2,seed=7", "phaseshift"} {
		a, err := mustScenarioJob(t, spec, topo)
		if err != nil {
			t.Fatal(err)
		}
		b, err := mustScenarioJob(t, spec, topo)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: generation is not deterministic", spec)
		}
	}
	a, _ := mustScenarioJob(t, "bursty,seed=7", topo)
	b, _ := mustScenarioJob(t, "bursty,seed=8", topo)
	if reflect.DeepEqual(a.Ranks, b.Ranks) {
		t.Error("bursty seeds 7 and 8 generated identical jobs")
	}
}

func mustScenarioJob(t *testing.T, spec string, topo Topology) (Job, error) {
	t.Helper()
	sc, err := ParseScenario(spec)
	if err != nil {
		t.Fatalf("ParseScenario(%q): %v", spec, err)
	}
	return sc.Job(topo)
}

// A larger topology scales the default rank count with it.
func TestScenarioFillsTopology(t *testing.T) {
	topo := Topology{Chips: 2, CoresPerChip: 2, SMTWays: 2}
	job, err := mustScenarioJob(t, "ramp,iters=2,base=4000", topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(job.Ranks) != 8 {
		t.Errorf("2x2x2 ramp generated %d ranks, want 8", len(job.Ranks))
	}
}

func TestNewScenarioSession(t *testing.T) {
	m, err := NewMachine(nil)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ParseScenario("step,base=5000,iters=3")
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.NewScenarioSession(sc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Balance(t.Context(), &PaperDynamic{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Errorf("Balance on a scenario session returned %d cycles", res.Cycles)
	}
	if _, err := m.NewScenarioSession(nil); err == nil {
		t.Error("NewScenarioSession(nil) accepted")
	}
}
