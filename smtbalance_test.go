package smtbalance

//lint:file-ignore SA1019 the deprecated Run/Sweep wrappers and DynamicBalance knobs are exercised on purpose: these tests pin that the old spellings stay behavior-identical to their replacements

import (
	"strings"
	"testing"
)

func demoJob(light, heavy int64) Job {
	return Job{Name: "demo", Ranks: [][]Phase{
		{Compute("fpu", light), Barrier()},
		{Compute("fpu", heavy), Barrier()},
		{Compute("fpu", light), Barrier()},
		{Compute("fpu", heavy), Barrier()},
	}}
}

func TestPriorityHelpers(t *testing.T) {
	if PriorityMedium.String() != "medium" {
		t.Error("Priority.String broken")
	}
	if !PriorityMedium.Valid() || Priority(9).Valid() {
		t.Error("Valid broken")
	}
	for p, want := range map[Priority]bool{
		PriorityOff: false, PriorityVeryLow: false, PriorityLow: true,
		PriorityMedium: true, PriorityMediumHigh: false, PriorityVeryHigh: false,
	} {
		if got := UserSettable(p); got != want {
			t.Errorf("UserSettable(%v) = %v", p, got)
		}
	}
	if !OSSettable(PriorityHigh) || OSSettable(PriorityVeryHigh) || OSSettable(PriorityOff) {
		t.Error("OSSettable broken")
	}
}

func TestDecodeShare(t *testing.T) {
	a, b, err := DecodeShare(PriorityHigh, PriorityLow)
	if err != nil {
		t.Fatal(err)
	}
	if a != 31.0/32 || b != 1.0/32 {
		t.Errorf("DecodeShare(6,2) = %g, %g", a, b)
	}
	if _, _, err := DecodeShare(Priority(8), PriorityLow); err == nil {
		t.Error("invalid priority accepted")
	}
}

func TestKernelKinds(t *testing.T) {
	for _, k := range KernelKinds() {
		if err := ParseKind(k); err != nil {
			t.Errorf("listed kind %q does not parse: %v", k, err)
		}
	}
	if err := ParseKind("bogus"); err == nil {
		t.Error("bogus kind accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("Compute with bogus kind must panic")
		}
	}()
	Compute("bogus", 1)
}

func TestRunBasic(t *testing.T) {
	res, err := Run(demoJob(10000, 40000), PinInOrder(4), &Options{NoOSNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 || res.Cycles <= 0 {
		t.Fatal("no time elapsed")
	}
	if res.ImbalancePct < 30 {
		t.Errorf("imbalance %.1f%%, want the skew visible", res.ImbalancePct)
	}
	if len(res.Ranks) != 4 || res.Iterations != 1 {
		t.Errorf("ranks %d iterations %d", len(res.Ranks), res.Iterations)
	}
	if res.Ranks[1].ComputePct < 90 {
		t.Errorf("heavy rank compute %.1f%%", res.Ranks[1].ComputePct)
	}
	tl := res.Timeline(60)
	if !strings.Contains(tl, "█") || !strings.Contains(tl, "░") {
		t.Errorf("timeline missing glyphs:\n%s", tl)
	}
	var csv, prv strings.Builder
	if err := res.WriteTraceCSV(&csv); err != nil || !strings.Contains(csv.String(), "compute") {
		t.Error("CSV export broken")
	}
	if err := res.WriteParaver(&prv); err != nil || !strings.HasPrefix(prv.String(), "#Paraver") {
		t.Error("Paraver export broken")
	}
}

// TestManualPriorityBalancing is the paper's headline via the public API.
func TestManualPriorityBalancing(t *testing.T) {
	job := demoJob(10000, 40000)
	base, err := Run(job, PinInOrder(4), &Options{NoOSNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := Run(job, Placement{
		CPU:      []int{0, 1, 2, 3},
		Priority: []Priority{PriorityMedium, PriorityHigh, PriorityMedium, PriorityHigh},
	}, &Options{NoOSNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Cycles >= base.Cycles {
		t.Errorf("balancing did not help: %d >= %d", tuned.Cycles, base.Cycles)
	}
	if tuned.ImbalancePct >= base.ImbalancePct {
		t.Errorf("imbalance not reduced: %.1f >= %.1f", tuned.ImbalancePct, base.ImbalancePct)
	}
}

func TestSuggestPlacement(t *testing.T) {
	pl, err := SuggestPlacement([]float64{10000, 40000, 10000, 40000})
	if err != nil {
		t.Fatal(err)
	}
	// Each core must pair a heavy with a light rank, heavy favored.
	byCore := map[int][]int{}
	for r, cpu := range pl.CPU {
		byCore[cpu/2] = append(byCore[cpu/2], r)
	}
	for core, ranks := range byCore {
		if len(ranks) != 2 {
			t.Fatalf("core %d has ranks %v", core, ranks)
		}
		a, b := ranks[0], ranks[1]
		heavy, light := a, b
		if (a == 1 || a == 3) == false {
			heavy, light = b, a
		}
		if pl.Priority[heavy] <= pl.Priority[light] {
			t.Errorf("core %d: heavy rank %d not favored", core, heavy)
		}
	}
	// The suggested placement must beat the naive one.
	job := demoJob(10000, 40000)
	base, err := Run(job, PinInOrder(4), &Options{NoOSNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	planned, err := Run(job, pl, &Options{NoOSNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	if planned.Cycles >= base.Cycles {
		t.Errorf("suggested placement (%d cycles) not better than naive (%d)", planned.Cycles, base.Cycles)
	}
	if _, err := SuggestPlacement([]float64{1, 2, 3}); err == nil {
		t.Error("odd rank count accepted")
	}
}

func TestDynamicBalanceOption(t *testing.T) {
	var job Job
	job.Name = "iterative"
	for r := 0; r < 4; r++ {
		var prog []Phase
		n := int64(8000)
		if r%2 == 1 {
			n = 32000
		}
		for i := 0; i < 10; i++ {
			prog = append(prog, Compute("fpu", n), Barrier())
		}
		job.Ranks = append(job.Ranks, prog)
	}
	var iters int
	base, err := Run(job, PinInOrder(4), &Options{NoOSNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := Run(job, PinInOrder(4), &Options{
		NoOSNoise:       true,
		DynamicBalance:  true,
		MaxPriorityDiff: 2,
		OnIteration:     func(IterationStats) { iters++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if dyn.BalancerMoves == 0 {
		t.Error("dynamic balancer never moved")
	}
	if iters != 10 {
		t.Errorf("OnIteration fired %d times, want 10", iters)
	}
	if dyn.Cycles >= base.Cycles {
		t.Errorf("dynamic balancing did not help: %d >= %d", dyn.Cycles, base.Cycles)
	}
}

func TestVanillaKernelOption(t *testing.T) {
	// Long enough that several timer ticks fire (the default tick period
	// is 100k cycles): on the vanilla kernel each tick resets the
	// priorities to medium.
	job := demoJob(130000, 600000)
	pl := Placement{
		CPU:      []int{0, 1, 2, 3},
		Priority: []Priority{PriorityMedium, PriorityHigh, PriorityMedium, PriorityHigh},
	}
	patched, err := Run(job, pl, nil)
	if err != nil {
		t.Fatal(err)
	}
	vanilla, err := Run(job, pl, &Options{VanillaKernel: true})
	if err != nil {
		t.Fatal(err)
	}
	if vanilla.Cycles <= patched.Cycles {
		t.Errorf("vanilla kernel kept the balancing benefit: %d <= %d", vanilla.Cycles, patched.Cycles)
	}
}

func TestRunValidation(t *testing.T) {
	job := demoJob(100, 100)
	if _, err := Run(job, Placement{CPU: []int{0, 1, 2, 3}, Priority: []Priority{9, 4, 4, 4}}, nil); err == nil {
		t.Error("invalid priority accepted")
	}
	if _, err := Run(Job{}, Placement{}, nil); err == nil {
		t.Error("empty job accepted")
	}
}

func TestComputeSized(t *testing.T) {
	job := Job{Name: "sized", Ranks: [][]Phase{
		{ComputeSized("l1", 5000, 4096), Barrier()},
		{ComputeSized("l1", 5000, 4096), Barrier()},
	}}
	if _, err := Run(job, PinInOrder(2), &Options{NoOSNoise: true}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("ComputeSized with bogus kind must panic")
		}
	}()
	ComputeSized("bogus", 1, 1)
}
